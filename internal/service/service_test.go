package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parlap/internal/gen"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, req, resp any) int {
	t.Helper()
	var body bytes.Buffer
	if req != nil {
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	hr, err := http.NewRequest(method, url, &body)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	r, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r.StatusCode
}

func meanFreeRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	mean := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		mean += b[i]
	}
	mean /= float64(n)
	for i := range b {
		b[i] -= mean
	}
	return b
}

func TestRegisterBuildsOnceAndCountsHits(t *testing.T) {
	ts := testServer(t, Config{})
	var first, second RegisterResponse
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:16x16"}, &first); code != 200 {
		t.Fatalf("register: status %d", code)
	}
	if first.Cached {
		t.Fatal("first registration reported cached")
	}
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:16x16"}, &second); code != 200 {
		t.Fatalf("re-register: status %d", code)
	}
	if !second.Cached || second.ID != first.ID {
		t.Fatalf("second registration not served from cache: %+v vs %+v", second, first)
	}
	var st GraphStats
	if code := doJSON(t, "GET", fmt.Sprintf("%s/graphs/%s/stats", ts.URL, first.ID), nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.CacheHits != 1 {
		t.Fatalf("stats report %d cache hits, want 1", st.CacheHits)
	}
}

// TestRegisterCanonicalHash: the same multigraph in different clothing —
// edge order permuted, endpoints flipped — must land on one cache entry.
func TestRegisterCanonicalHash(t *testing.T) {
	ts := testServer(t, Config{})
	var a, b RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{EdgeList: "0 1 1\n1 2 2\n2 3 1.5"}, &a)
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{EdgeList: "3 2 1.5\n2 1 2\n1 0 1"}, &b)
	if a.ID != b.ID || !b.Cached {
		t.Fatalf("reordered/flipped edge list missed the cache: %+v vs %+v", a, b)
	}
}

func TestSolveSingleAndBatchBitwise(t *testing.T) {
	ts := testServer(t, Config{})
	var reg RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:16x16"}, &reg)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)

	const k = 3
	bs := make([][]float64, k)
	singles := make([][]float64, k)
	for c := range bs {
		bs[c] = meanFreeRHS(reg.N, int64(50+c))
		var resp SolveResponse
		if code := doJSON(t, "POST", solveURL, SolveRequest{B: bs[c], Eps: 1e-7}, &resp); code != 200 {
			t.Fatalf("solve %d: status %d", c, code)
		}
		if resp.Stats == nil || !resp.Stats.Converged {
			t.Fatalf("solve %d did not converge: %+v", c, resp.Stats)
		}
		if resp.Stats.Residual > 1e-6 {
			t.Fatalf("solve %d residual %g too large", c, resp.Stats.Residual)
		}
		singles[c] = resp.X
	}
	var batch SolveResponse
	if code := doJSON(t, "POST", solveURL, SolveRequest{Batch: bs, Eps: 1e-7}, &batch); code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Xs) != k {
		t.Fatalf("batch returned %d columns, want %d", len(batch.Xs), k)
	}
	for c := range batch.Xs {
		if len(batch.Xs[c]) != len(singles[c]) {
			t.Fatalf("column %d: length mismatch", c)
		}
		for i := range batch.Xs[c] {
			if batch.Xs[c][i] != singles[c][i] {
				t.Fatalf("column %d entry %d: batch %g != single %g", c, i, batch.Xs[c][i], singles[c][i])
			}
		}
	}
	var st GraphStats
	doJSON(t, "GET", fmt.Sprintf("%s/graphs/%s/stats", ts.URL, reg.ID), nil, &st)
	if st.Solves != k+1 || st.RHSServed != 2*k {
		t.Fatalf("stats solves=%d rhs=%d, want %d and %d", st.Solves, st.RHSServed, k+1, 2*k)
	}
}

// TestConcurrentHTTPSolves: many clients hammering one cached chain must
// produce exactly the answers sequential requests produce. Run under -race
// this is the serving-layer race check of the acceptance criteria.
func TestConcurrentHTTPSolves(t *testing.T) {
	ts := testServer(t, Config{MaxInflight: 4, Workers: 4})
	var reg RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:14x14"}, &reg)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)

	const clients = 10
	bs := make([][]float64, clients)
	refs := make([][]float64, clients)
	for c := range bs {
		bs[c] = meanFreeRHS(reg.N, int64(70+c))
		var resp SolveResponse
		if code := doJSON(t, "POST", solveURL, SolveRequest{B: bs[c]}, &resp); code != 200 {
			t.Fatalf("reference solve %d: status %d", c, code)
		}
		refs[c] = resp.X
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var resp SolveResponse
			if code := doJSON(t, "POST", solveURL, SolveRequest{B: bs[c]}, &resp); code != 200 {
				errs[c] = fmt.Errorf("status %d", code)
				return
			}
			for i := range resp.X {
				if resp.X[i] != refs[c][i] {
					errs[c] = fmt.Errorf("entry %d: concurrent %g != sequential %g", i, resp.X[i], refs[c][i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	ts := testServer(t, Config{MaxGraphs: 2})
	ids := make([]string, 3)
	for i, spec := range []string{"grid2d:8x8", "grid2d:9x9", "grid2d:10x10"} {
		var reg RegisterResponse
		if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: spec}, &reg); code != 200 {
			t.Fatalf("register %s: status %d", spec, code)
		}
		ids[i] = reg.ID
	}
	// The first graph is the LRU victim; its id must now 404.
	b := meanFreeRHS(64, 1)
	code := doJSON(t, "POST", fmt.Sprintf("%s/graphs/%s/solve", ts.URL, ids[0]), SolveRequest{B: b}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("evicted graph answered with status %d, want 404", code)
	}
	// The survivors still solve.
	b = meanFreeRHS(100, 2)
	var resp SolveResponse
	if code := doJSON(t, "POST", fmt.Sprintf("%s/graphs/%s/solve", ts.URL, ids[2]), SolveRequest{B: b}, &resp); code != 200 {
		t.Fatalf("cached graph: status %d", code)
	}
	var health ServerStats
	doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
	if health.Graphs != 2 || health.Evictions != 1 {
		t.Fatalf("health reports %d graphs / %d evictions, want 2 / 1", health.Graphs, health.Evictions)
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t, Config{MaxBatch: 2})
	// Unknown id.
	if code := doJSON(t, "POST", ts.URL+"/graphs/gdeadbeef/solve", SolveRequest{B: []float64{1}}, nil); code != 404 {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	// Bad spec.
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "nosuch:1"}, nil); code != 400 {
		t.Fatalf("bad spec: status %d, want 400", code)
	}
	// Both payload kinds at once.
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "path:5", EdgeList: "0 1"}, nil); code != 400 {
		t.Fatalf("ambiguous payload: status %d, want 400", code)
	}
	var reg RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "path:16"}, &reg)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)
	// Wrong RHS length.
	if code := doJSON(t, "POST", solveURL, SolveRequest{B: []float64{1, 2}}, nil); code != 400 {
		t.Fatalf("wrong rhs length: status %d, want 400", code)
	}
	// Batch over the limit.
	big := [][]float64{meanFreeRHS(16, 1), meanFreeRHS(16, 2), meanFreeRHS(16, 3)}
	if code := doJSON(t, "POST", solveURL, SolveRequest{Batch: big}, nil); code != 400 {
		t.Fatalf("oversized batch: status %d, want 400", code)
	}
	// Neither b nor batch.
	if code := doJSON(t, "POST", solveURL, SolveRequest{}, nil); code != 400 {
		t.Fatalf("empty solve request: status %d, want 400", code)
	}
}

// TestOversizedGraphRejected: registration payloads beyond the configured
// size caps are refused before any build work starts.
func TestOversizedGraphRejected(t *testing.T) {
	ts := testServer(t, Config{MaxGraphVertices: 100})
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:20x20"}, nil); code != 400 {
		t.Fatalf("oversized graph: status %d, want 400", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:8x8"}, nil); code != 200 {
		t.Fatalf("within-cap graph: status %d, want 200", code)
	}
}

// TestGraphIDCanonicalization exercises the hash directly.
func TestGraphIDCanonicalization(t *testing.T) {
	a := gen.Grid2D(5, 5)
	b := gen.Grid2D(5, 5)
	if GraphID(a) != GraphID(b) {
		t.Fatal("identical graphs hash differently")
	}
	c := gen.Grid2D(5, 6)
	if GraphID(a) == GraphID(c) {
		t.Fatal("different graphs collide")
	}
}

// TestCacheByteBudgetEviction: with a byte budget too small for two chains,
// registering a second graph must evict the first even though the entry
// count is far under MaxGraphs — the huge-chain OOM guard.
func TestCacheByteBudgetEviction(t *testing.T) {
	ts := testServer(t, Config{MaxGraphs: 16, MaxCacheBytes: 1, Workers: 1})
	var r1, r2 RegisterResponse
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:12x12"}, &r1); code != http.StatusOK {
		t.Fatalf("register 1: status %d", code)
	}
	var st1 GraphStats
	if code := doJSON(t, "GET", ts.URL+"/graphs/"+r1.ID+"/stats", nil, &st1); code != http.StatusOK {
		t.Fatalf("stats 1: status %d", code)
	}
	if st1.Bytes <= 0 {
		t.Fatalf("entry bytes not accounted: %d", st1.Bytes)
	}
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:13x13"}, &r2); code != http.StatusOK {
		t.Fatalf("register 2: status %d", code)
	}
	var health ServerStats
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Graphs != 1 {
		t.Fatalf("byte budget kept %d graphs, want 1", health.Graphs)
	}
	if health.Evictions < 1 {
		t.Fatalf("no eviction recorded: %+v", health)
	}
	if health.CacheBytes <= 0 || health.MaxCacheBytes != 1 {
		t.Fatalf("cache byte counters wrong: bytes=%d max=%d", health.CacheBytes, health.MaxCacheBytes)
	}
	// The evicted first graph must now 404; the survivor must solve.
	var solve SolveResponse
	b := meanFreeRHS(12*12, 3)
	if code := doJSON(t, "POST", ts.URL+"/graphs/"+r1.ID+"/solve", SolveRequest{B: b}, &solve); code != http.StatusNotFound {
		t.Fatalf("evicted graph solve: status %d, want 404", code)
	}
	b2 := meanFreeRHS(13*13, 4)
	if code := doJSON(t, "POST", ts.URL+"/graphs/"+r2.ID+"/solve", SolveRequest{B: b2}, &solve); code != http.StatusOK {
		t.Fatalf("survivor solve: status %d", code)
	}
}

// TestCacheBytesReleasedOnEviction: with a budget fitting roughly one chain,
// repeated registrations must keep CacheBytes bounded (evictions subtract
// their bytes) rather than accumulating.
func TestCacheBytesReleasedOnEviction(t *testing.T) {
	srv := New(Config{MaxGraphs: 16, MaxCacheBytes: 1, Workers: 1})
	specs := []string{"grid2d:10x10", "grid2d:11x11", "grid2d:12x12"}
	var last int64
	for _, spec := range specs {
		g, err := gen.FromSpec(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := srv.Register(context.Background(), g, spec); err != nil {
			t.Fatal(err)
		}
		h := srv.Health()
		if h.Graphs != 1 {
			t.Fatalf("after %s: %d graphs cached, want 1", spec, h.Graphs)
		}
		last = h.CacheBytes
	}
	// Only the last chain's bytes remain accounted.
	srv.mu.Lock()
	var want int64
	for _, e := range srv.entries {
		want += e.bytes
	}
	srv.mu.Unlock()
	if last != want {
		t.Fatalf("CacheBytes %d, want sum of cached entries %d", last, want)
	}
}

// waitQueueLen spins until the admitter's queue holds n waiters.
func waitQueueLen(t *testing.T, a *admitter, n int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		a.mu.Lock()
		l := a.queue.Len()
		a.mu.Unlock()
		if l == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters", n)
}

// TestAdmitterPerGraphSharding: a hot graph holding every slot (allowed
// while uncontended) must yield its next slot to a later-arriving request
// for a different graph before its own queued request — and the capped
// waiter must still be admitted afterwards (no starvation either way).
func TestAdmitterPerGraphSharding(t *testing.T) {
	a := newAdmitter(2, 1)
	ctx := context.Background()
	// Uncontended fallback: the hot graph may exceed its per-graph cap.
	if err := a.Acquire(ctx, "hot"); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx, "hot"); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	go func() {
		if err := a.Acquire(ctx, "hot"); err == nil {
			order <- "hot"
		}
	}()
	waitQueueLen(t, a, 1) // hot's third request queued first...
	go func() {
		if err := a.Acquire(ctx, "cold"); err == nil {
			order <- "cold"
		}
	}()
	waitQueueLen(t, a, 2) // ...then cold's.
	a.Release("hot")
	if got := <-order; got != "cold" {
		t.Fatalf("first freed slot went to %q, want the other graph", got)
	}
	a.Release("hot")
	if got := <-order; got != "hot" {
		t.Fatalf("second freed slot went to %q, want the capped graph", got)
	}
	a.Release("cold")
	a.Release("hot")
	if g, tot := a.Inflight("hot"); tot != 0 || g != 0 {
		t.Fatalf("slots leaked: hot=%d total=%d", g, tot)
	}
}

// TestAdmitterAcquireContextCancel: a queued waiter whose context expires
// must leave the queue without leaking a slot.
func TestAdmitterAcquireContextCancel(t *testing.T) {
	a := newAdmitter(1, 1)
	if err := a.Acquire(context.Background(), "g1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.Acquire(ctx, "g2") }()
	waitQueueLen(t, a, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	a.Release("g1")
	if err := a.Acquire(context.Background(), "g3"); err != nil {
		t.Fatal(err)
	}
	a.Release("g3")
	_, tot := a.Inflight("g3")
	if tot != 0 {
		t.Fatalf("slots leaked after cancel: total=%d", tot)
	}
}

// TestAdmitterWorkConserving: when every waiting graph is at its per-graph
// cap and slots are still free, the cap must not idle capacity — the FIFO
// head gets the slot anyway.
func TestAdmitterWorkConserving(t *testing.T) {
	a := newAdmitter(4, 1)
	ctx := context.Background()
	// A and B each at their cap of 1, two slots still free, both queued:
	// neither is under-cap, so work conservation must admit both.
	if err := a.Acquire(ctx, "A"); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx, "B"); err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 2)
	go func() {
		if err := a.Acquire(ctx, "A"); err == nil {
			done <- "A"
		}
	}()
	go func() {
		if err := a.Acquire(ctx, "B"); err == nil {
			done <- "B"
		}
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("over-cap waiters idled despite free slots")
		}
	}
	_, tot := a.Inflight("A")
	if tot != 4 {
		t.Fatalf("total inflight %d, want 4", tot)
	}
	for _, id := range []string{"A", "A", "B", "B"} {
		a.Release(id)
	}
}
