package service

import (
	"container/list"
	"context"
	"sync"
)

// admitter is the solve admission controller: a global bound on concurrently
// executing solves, sharded per graph id so one hot graph cannot starve the
// others, with a fair fallback that lets a lone graph use every slot when
// nothing else is waiting.
//
// Policy: at most max solves run at once. A graph holding perGraph or more
// slots is only granted another one when no request for a *different* graph
// is waiting — so under contention each graph is capped at perGraph, while
// an uncontended graph (the common single-tenant case) still gets the whole
// budget. Waiters are served FIFO except for that cap: a capped waiter is
// skipped, not cancelled, and becomes eligible again as soon as its graph
// drops below perGraph or the competing waiters drain. The cap is a
// priority rule, never a throughput limiter: when every waiter is at its
// cap and slots are free, the FIFO head is admitted anyway (work
// conservation).
type admitter struct {
	mu       sync.Mutex
	max      int
	perGraph int
	total    int
	byGraph  map[string]int
	queue    list.List // of *admitWaiter, FIFO

	// testGrantedWhileCancelling, when set, runs in Acquire after ctx
	// cancellation is observed but before the admitter lock is retaken —
	// the window in which a concurrent Release can still grant the
	// cancelled waiter. Tests use it to drive that interleaving
	// deterministically; production code never sets it.
	testGrantedWhileCancelling func()
}

// admitWaiter is one queued Acquire call.
type admitWaiter struct {
	id    string
	ready chan struct{} // closed on admission
	elem  *list.Element
}

func newAdmitter(max, perGraph int) *admitter {
	return &admitter{max: max, perGraph: perGraph, byGraph: make(map[string]int)}
}

// otherGraphWaitingLocked reports whether any waiter besides skip wants a
// different graph than id.
func (a *admitter) otherGraphWaitingLocked(id string, skip *admitWaiter) bool {
	for el := a.queue.Front(); el != nil; el = el.Next() {
		w := el.Value.(*admitWaiter)
		if w != skip && w.id != id {
			return true
		}
	}
	return false
}

// admissibleLocked reports whether a request for id may take a slot now,
// ignoring the waiter's own queue entry (self).
func (a *admitter) admissibleLocked(id string, self *admitWaiter) bool {
	if a.total >= a.max {
		return false
	}
	return a.byGraph[id] < a.perGraph || !a.otherGraphWaitingLocked(id, self)
}

// grantLocked hands waiter w its slot.
func (a *admitter) grantLocked(w *admitWaiter) {
	a.total++
	a.byGraph[w.id]++
	a.queue.Remove(w.elem)
	close(w.ready)
}

// drainLocked fills free slots from the queue: each slot goes to the first
// waiter (FIFO) under its per-graph cap; when every waiter is at its cap,
// the slot goes to the FIFO head anyway — idling capacity that no under-cap
// waiter can use would make the cap a throughput limiter instead of a
// priority rule (work conservation).
func (a *admitter) drainLocked() {
	for a.total < a.max && a.queue.Len() > 0 {
		granted := false
		for el := a.queue.Front(); el != nil; el = el.Next() {
			w := el.Value.(*admitWaiter)
			if a.admissibleLocked(w.id, w) {
				a.grantLocked(w)
				granted = true
				break
			}
		}
		if !granted {
			a.grantLocked(a.queue.Front().Value.(*admitWaiter))
		}
	}
}

// Acquire blocks until a solve slot for graph id is granted or ctx expires.
func (a *admitter) Acquire(ctx context.Context, id string) error {
	a.mu.Lock()
	w := &admitWaiter{id: id, ready: make(chan struct{})}
	w.elem = a.queue.PushBack(w)
	a.drainLocked()
	select {
	case <-w.ready:
		a.mu.Unlock()
		return nil
	default:
	}
	a.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		if a.testGrantedWhileCancelling != nil {
			a.testGrantedWhileCancelling()
		}
		a.mu.Lock()
		select {
		case <-w.ready:
			// Granted while we were cancelling: return the slot.
			a.releaseLocked(id)
		default:
			a.queue.Remove(w.elem)
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot held for graph id and admits newly eligible waiters.
func (a *admitter) Release(id string) {
	a.mu.Lock()
	a.releaseLocked(id)
	a.mu.Unlock()
}

func (a *admitter) releaseLocked(id string) {
	a.total--
	if a.byGraph[id]--; a.byGraph[id] <= 0 {
		delete(a.byGraph, id)
	}
	a.drainLocked()
}

// QueueDepth returns the number of Acquire calls currently waiting for a
// slot (the /metrics admission-queue gauge).
func (a *admitter) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queue.Len()
}

// Inflight returns the number of currently executing solves for id and in
// total (stats surface).
func (a *admitter) Inflight(id string) (graph, total int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byGraph[id], a.total
}
