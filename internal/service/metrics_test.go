package service

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and parses the exposition into a map from series
// (name plus label set, exactly as exposed) to value.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// The full-catalogue scrape: after a register and a few solves, every key
// series must exist and the traffic-driven ones must be nonzero.
func TestMetricsExposition(t *testing.T) {
	ts := testServer(t, Config{})
	var reg RegisterResponse
	// 32x32 builds a depth-2 chain, so every stage — the intermediate-level
	// Chebyshev sweeps included — accumulates real time.
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:32x32"}, &reg); code != 200 {
		t.Fatalf("register: status %d", code)
	}
	b := meanFreeRHS(1024, 3)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)
	for i := 0; i < 3; i++ {
		var resp SolveResponse
		if code := doJSON(t, "POST", solveURL, SolveRequest{B: b}, &resp); code != 200 {
			t.Fatalf("solve %d: status %d", i, code)
		}
	}

	m := scrape(t, ts.URL)
	positive := []string{
		"parlap_registers_total",
		"parlap_builds_total",
		"parlap_build_seconds_total",
		"parlap_cached_graphs",
		"parlap_cache_bytes",
		"parlap_cache_max_bytes",
		"parlap_solves_total",
		"parlap_rhs_total",
		"parlap_solve_duration_seconds_count",
		"parlap_solve_duration_seconds_sum",
		"parlap_uptime_seconds",
		"go_goroutines",
		"go_memstats_alloc_bytes",
	}
	for _, name := range positive {
		if m[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, m[name])
		}
	}
	if got := m["parlap_solves_total"]; got != 3 {
		t.Errorf("parlap_solves_total = %v, want 3", got)
	}
	gl := fmt.Sprintf(`{graph="%s"}`, reg.ID)
	if got := m["parlap_graph_solves_total"+gl]; got != 3 {
		t.Errorf("parlap_graph_solves_total%s = %v, want 3", gl, got)
	}
	if m["parlap_graph_solve_duration_seconds_count"+gl] != 3 {
		t.Errorf("per-graph latency histogram count = %v, want 3",
			m["parlap_graph_solve_duration_seconds_count"+gl])
	}
	// The stage histograms must have observed every solve, and the hot
	// stages must have accumulated real time.
	for _, stage := range []string{"queue", "workspace", "pcg", "precond", "cheb", "forward", "back", "bottom"} {
		key := fmt.Sprintf(`parlap_solve_stage_duration_seconds_count{stage="%s"}`, stage)
		if m[key] != 3 {
			t.Errorf("%s = %v, want 3", key, m[key])
		}
	}
	if m[`parlap_solve_stage_duration_seconds_sum{stage="precond"}`] <= 0 {
		t.Error("precond stage histogram recorded no time")
	}
	if m[fmt.Sprintf(`parlap_graph_stage_seconds_total{graph="%s",stage="cheb"}`, reg.ID)] <= 0 {
		t.Error("per-graph cheb stage counter recorded no time")
	}
	// HTTP traffic counters: the register, the solves, and nothing fictional.
	if m[`parlap_http_requests_total{route="register",code="200"}`] != 1 {
		t.Error("register route not counted")
	}
	if m[`parlap_http_requests_total{route="solve",code="200"}`] != 3 {
		t.Error("solve route not counted")
	}
}

// Every error path returns the JSON envelope with the request id from the
// X-Request-ID header — including the catch-all for unmatched routes.
func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	ts := testServer(t, Config{})
	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
	}{
		{"POST", "/graphs/nope/solve", `{"b":[1,-1]}`, 404},
		{"POST", "/graphs", `{`, 400},
		{"GET", "/no/such/route", "", 404},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		rid := resp.Header.Get("X-Request-ID")
		if rid == "" {
			t.Fatalf("%s %s: no X-Request-ID header", tc.method, tc.path)
		}
		want := fmt.Sprintf(`"request_id":"%s"`, rid)
		if !strings.Contains(string(body), `"error":`) || !strings.Contains(string(body), want) {
			t.Fatalf("%s %s: body %q lacks error envelope with %s", tc.method, tc.path, body, want)
		}
	}
}

// ?debug=timings returns the request's stage trace; without it the block is
// absent from the response.
func TestSolveDebugTimings(t *testing.T) {
	ts := testServer(t, Config{})
	var reg RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:16x16"}, &reg)
	b := meanFreeRHS(256, 5)
	base := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)

	var plain SolveResponse
	if code := doJSON(t, "POST", base, SolveRequest{B: b}, &plain); code != 200 {
		t.Fatalf("solve: status %d", code)
	}
	if plain.Timings != nil {
		t.Fatal("timings present without ?debug=timings")
	}

	var dbg SolveResponse
	if code := doJSON(t, "POST", base+"?debug=timings", SolveRequest{B: b}, &dbg); code != 200 {
		t.Fatalf("debug solve: status %d", code)
	}
	tm := dbg.Timings
	if tm == nil {
		t.Fatal("no timings block with ?debug=timings")
	}
	if tm.TotalMS <= 0 || tm.PrecondMS <= 0 {
		t.Fatalf("empty timings: %+v", tm)
	}
	if tm.Levels <= 0 || len(tm.ChebMS) != tm.Levels || len(tm.ForwardMS) != tm.Levels || len(tm.BackMS) != tm.Levels {
		t.Fatalf("per-level arrays inconsistent with levels=%d: %+v", tm.Levels, tm)
	}
	// Exclusive attribution: the stage pieces cannot exceed what they
	// partition.
	var stages float64
	for i := range tm.ChebMS {
		stages += tm.ChebMS[i] + tm.ForwardMS[i] + tm.BackMS[i]
	}
	stages += tm.BottomMS
	if stages > tm.PrecondMS*1.001 {
		t.Fatalf("stage pieces %.3fms exceed precond %.3fms", stages, tm.PrecondMS)
	}
}

// The /stats timings block appears once solves have run and summarizes the
// same histogram /metrics exports.
func TestStatsTimingsBlock(t *testing.T) {
	ts := testServer(t, Config{})
	var reg RegisterResponse
	// Depth-2 chain (see TestMetricsExposition) so the cheb stage records.
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:32x32"}, &reg)
	statsURL := fmt.Sprintf("%s/graphs/%s/stats", ts.URL, reg.ID)

	var before GraphStats
	doJSON(t, "GET", statsURL, nil, &before)
	if before.Timings != nil {
		t.Fatal("timings block present before any solve")
	}

	b := meanFreeRHS(1024, 7)
	doJSON(t, "POST", fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID), SolveRequest{B: b}, &SolveResponse{})
	var after GraphStats
	doJSON(t, "GET", statsURL, nil, &after)
	tmg := after.Timings
	if tmg == nil || tmg.Solves != 1 {
		t.Fatalf("timings block missing or wrong count: %+v", tmg)
	}
	if tmg.P50MS <= 0 || tmg.P99MS < tmg.P50MS || tmg.MeanMS <= 0 {
		t.Fatalf("implausible quantiles: %+v", tmg)
	}
	found := false
	for _, st := range tmg.Stages {
		if st.Stage == "cheb" && st.TotalMS > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cheb stage time in %+v", tmg.Stages)
	}
}
