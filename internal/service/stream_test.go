package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graphio"
	"parlap/internal/solver"
)

// streamRows posts body to /solve/stream and decodes every response row.
func streamRows(t *testing.T, url string, body io.Reader) (rows []streamDecoded, status int) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var row streamDecoded
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("stream row decode: %v", err)
		}
		rows = append(rows, row)
	}
	return rows, resp.StatusCode
}

type streamDecoded struct {
	Row        int       `json:"row"`
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Residual   float64   `json:"residual"`
	Error      string    `json:"error"`
	RowsEmit   int       `json:"rows_emitted"`
}

// TestSolveStream10kBitwise is the streaming acceptance lock: a 10k-row
// ndjson batch flows through /solve/stream in admission-bounded windows and
// every returned row is bitwise identical to an independent Solve of the
// same right-hand side (the streamed x took one extra JSON round trip, so
// the comparison also exercises the codec's exact float round-tripping).
func TestSolveStream10kBitwise(t *testing.T) {
	const (
		numRows = 10000
		eps     = 1e-8
	)
	g := gen.Grid2D(8, 8)
	ts := testServer(t, Config{StreamWindow: 64})
	var reg RegisterResponse
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:8x8"}, &reg); code != 200 {
		t.Fatalf("register: status %d", code)
	}

	// The independent reference: a separately built solver over the same
	// graph (Workers does not affect the bits, which the equivalence suites
	// lock separately).
	ref, err := solver.NewWithOptions(g, solver.DefaultChainParams(), solver.Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	bs := make([][]float64, numRows)
	var body bytes.Buffer
	for r := range bs {
		b := make([]float64, g.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		bs[r] = b
		if err := graphio.WriteVectorRow(&body, b); err != nil {
			t.Fatal(err)
		}
	}

	url := fmt.Sprintf("%s/graphs/%s/solve/stream?eps=%g", ts.URL, reg.ID, eps)
	rows, status := streamRows(t, url, &body)
	if status != http.StatusOK {
		t.Fatalf("stream status %d", status)
	}
	if len(rows) != numRows {
		t.Fatalf("stream returned %d rows, want %d", len(rows), numRows)
	}
	for i, row := range rows {
		if row.Error != "" {
			t.Fatalf("row %d: in-band error %q", i, row.Error)
		}
		if row.Row != i {
			t.Fatalf("rows out of order: got %d at position %d", row.Row, i)
		}
		if !row.Converged {
			t.Fatalf("row %d did not converge (residual %.3e)", i, row.Residual)
		}
		want, _ := ref.Solve(bs[i], eps)
		if len(row.X) != len(want) {
			t.Fatalf("row %d: %d entries, want %d", i, len(row.X), len(want))
		}
		for j := range want {
			if math.Float64bits(row.X[j]) != math.Float64bits(want[j]) {
				t.Fatalf("row %d entry %d: streamed %x != independent solve %x",
					i, j, math.Float64bits(row.X[j]), math.Float64bits(want[j]))
			}
		}
	}

	// The stream's RHS count lands in the per-graph serving stats.
	var st GraphStats
	if code := doJSON(t, "GET", fmt.Sprintf("%s/graphs/%s/stats", ts.URL, reg.ID), nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.RHSServed != numRows {
		t.Fatalf("stats report %d rhs served, want %d", st.RHSServed, numRows)
	}
	if st.Solves < int64(numRows)/64 {
		t.Fatalf("stats report %d windows, want >= %d", st.Solves, numRows/64)
	}
}

func TestSolveStreamErrors(t *testing.T) {
	ts := testServer(t, Config{StreamWindow: 4})
	var reg RegisterResponse
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "path:10"}, &reg); code != 200 {
		t.Fatalf("register: status %d", code)
	}
	url := fmt.Sprintf("%s/graphs/%s/solve/stream", ts.URL, reg.ID)

	t.Run("unknown-graph", func(t *testing.T) {
		_, status := streamRows(t, ts.URL+"/graphs/nope/solve/stream", strings.NewReader("[1]\n"))
		if status != http.StatusNotFound {
			t.Fatalf("status %d, want 404", status)
		}
	})
	t.Run("bad-eps", func(t *testing.T) {
		resp, err := http.Post(url+"?eps=banana", "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("wrong-length-row", func(t *testing.T) {
		rows, status := streamRows(t, url, strings.NewReader("[1,2,3]\n"))
		// Fails before any row is emitted: a clean HTTP error.
		if status != http.StatusBadRequest {
			t.Fatalf("status %d (rows %v), want 400", status, rows)
		}
	})
	t.Run("malformed-after-window", func(t *testing.T) {
		// 4 good rows fill a window and stream back, THEN the bad row hits:
		// the status is already 200, so the error arrives in-band.
		var body bytes.Buffer
		for i := 0; i < 4; i++ {
			body.WriteString(`[1,0,0,0,0,0,0,0,0,-1]` + "\n")
		}
		body.WriteString("[NaN]\n")
		rows, status := streamRows(t, url, &body)
		if status != http.StatusOK {
			t.Fatalf("status %d, want 200 (committed stream)", status)
		}
		if len(rows) != 5 {
			t.Fatalf("got %d rows, want 4 solutions + 1 error row", len(rows))
		}
		last := rows[4]
		if last.Error == "" || last.RowsEmit != 4 {
			t.Fatalf("want in-band error row after 4 emitted, got %+v", last)
		}
		for _, row := range rows[:4] {
			if row.Error != "" || !row.Converged {
				t.Fatalf("good row failed: %+v", row)
			}
		}
	})
	t.Run("empty-stream", func(t *testing.T) {
		rows, status := streamRows(t, url, strings.NewReader("\n\n"))
		if status != http.StatusOK || len(rows) != 0 {
			t.Fatalf("empty stream: status %d rows %d, want 200/0", status, len(rows))
		}
	})
}
