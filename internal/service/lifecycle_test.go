package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/solver"
)

// Lifecycle regression tests: eviction vs in-flight solves (an evicted
// entry's solver must stay alive until its last reference drops) and exact
// cache-byte accounting under churn (the charge must track pooled-workspace
// growth, and eviction must release exactly what was charged).

func TestEvictDuringSolveKeepsSolverAlive(t *testing.T) {
	ctx := context.Background()
	s := New(Config{MaxGraphs: 1, Workers: 2})
	g1 := gen.Grid2D(8, 8)
	id1 := GraphID(g1)
	if _, _, err := s.Register(ctx, g1, "t"); err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{meanFreeRHS(g1.N, 7)}
	xRef, _, err := s.Solve(ctx, id1, bs, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Pin the entry the way an executing solve does, then evict it by
	// registering a second graph into the 1-entry cache.
	e, ok := s.lookupRef(id1)
	if !ok {
		t.Fatal("entry vanished before eviction")
	}
	g2 := gen.Grid2D(9, 9)
	if _, _, err := s.Register(ctx, g2, "t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.lookupRef(id1); ok {
		t.Fatal("evicted entry still served lookups")
	}
	s.mu.Lock()
	evicted, sv := e.evicted, e.solver
	s.mu.Unlock()
	if !evicted {
		t.Fatal("entry not marked evicted")
	}
	if sv == nil {
		t.Fatal("solver reclaimed while a reference was held")
	}

	// The pinned solver must still solve, bit-identically to before the
	// eviction — its chain and pooled workspaces were not yanked away.
	xs, _ := sv.SolveBatchOpts(bs, s.cfg.DefaultEps, solver.Options{Workers: 1})
	for i := range xRef[0] {
		if math.Float64bits(xs[0][i]) != math.Float64bits(xRef[0][i]) {
			t.Fatalf("post-eviction solve differs at entry %d", i)
		}
	}

	// Dropping the last reference reclaims.
	s.release(e)
	s.mu.Lock()
	sv = e.solver
	s.mu.Unlock()
	if sv != nil {
		t.Fatal("solver not reclaimed after last release")
	}
}

// TestEvictDuringConcurrentSolves races real Solve calls against evictions;
// under -race this is the detector for reclaim-under-solve. Every call must
// either succeed or report NotFound — never panic or return garbage.
func TestEvictDuringConcurrentSolves(t *testing.T) {
	ctx := context.Background()
	s := New(Config{MaxGraphs: 1, MaxInflight: 4, Workers: 4})
	g1 := gen.Grid2D(8, 8)
	g2 := gen.Grid2D(5, 13)
	id1 := GraphID(g1)
	if _, _, err := s.Register(ctx, g1, "t"); err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{meanFreeRHS(g1.N, 3)}
	xRef, _, err := s.Solve(ctx, id1, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				xs, _, err := s.Solve(ctx, id1, bs, 0)
				if err != nil {
					var nf *NotFoundError
					if !errors.As(err, &nf) {
						t.Errorf("solve: %v", err)
					}
					return // evicted mid-run; acceptable
				}
				for j := range xRef[0] {
					if math.Float64bits(xs[0][j]) != math.Float64bits(xRef[0][j]) {
						t.Errorf("racing solve differs at entry %d", j)
						return
					}
				}
			}
		}()
	}
	// Churn the cache underneath the solvers: each registration evicts the
	// other graph.
	for i := 0; i < 4; i++ {
		if _, _, err := s.Register(ctx, g2, "t"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Register(ctx, g1, "t"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Register(ctx, g2, "t"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestCacheBytesExactUnderChurn locks the accounting invariant: cacheBytes
// always equals the sum of the cached entries' current charges, the charge
// tracks pooled-workspace growth from solves, and eviction releases exactly
// what was charged — no residue accumulating across churn (the drift bug),
// and never above the configured budget once trims settle.
func TestCacheBytesExactUnderChurn(t *testing.T) {
	ctx := context.Background()
	s := New(Config{MaxGraphs: 2, Workers: 2})
	graphs := []*struct {
		spec string
		n    [2]int
	}{
		{"a", [2]int{8, 8}}, {"b", [2]int{9, 7}}, {"c", [2]int{6, 11}}, {"d", [2]int{10, 6}},
	}
	check := func(when string) {
		s.mu.Lock()
		var sum int64
		for _, e := range s.entries {
			sum += e.bytes
			if e.solver != nil && e.bytes != e.solver.MemoryBytes() {
				t.Errorf("%s: entry %s charged %d, footprint %d (recharge drifted)",
					when, e.id, e.bytes, e.solver.MemoryBytes())
			}
		}
		if s.cacheBytes != sum {
			t.Errorf("%s: cacheBytes %d != Σ entry charges %d", when, s.cacheBytes, sum)
		}
		s.mu.Unlock()
		if h := s.Health(); h.CacheBytes > h.MaxCacheBytes {
			t.Errorf("%s: cache_bytes %d > max_cache_bytes %d", when, h.CacheBytes, h.MaxCacheBytes)
		}
	}
	for round := 0; round < 2; round++ {
		for _, spec := range graphs {
			g := gen.Grid2D(spec.n[0], spec.n[1])
			if _, _, err := s.Register(ctx, g, spec.spec); err != nil {
				t.Fatal(err)
			}
			check("after register " + spec.spec)
			// Batch solves grow the pooled workspaces past their build-time
			// high-water mark; recharge must fold that into the accounting.
			bs := [][]float64{meanFreeRHS(g.N, 1), meanFreeRHS(g.N, 2), meanFreeRHS(g.N, 3)}
			if _, _, err := s.Solve(ctx, GraphID(g), bs, 0); err != nil {
				t.Fatal(err)
			}
			check("after solve " + spec.spec)
		}
	}
	if got := s.Health().Evictions; got < int64(len(graphs)) {
		t.Fatalf("churn produced only %d evictions", got)
	}
}
