package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"parlap/internal/chainio"
	"parlap/internal/chainio/s3test"
	"parlap/internal/gen"
)

// Multi-node shared-store behavior at the service level: a server that has
// never built a graph serves a solve for it by restoring the chain from the
// snapshot store on demand — the mechanism a failover replica relies on —
// and degraded blobs fall back safely. The S3 variants run the same paths
// through the SigV4-verifying fake S3 server, proving the serving layer and
// the S3 BlobStore compose.

func s3Store(t *testing.T, fake *s3test.Server) *chainio.S3Store {
	t.Helper()
	store, err := chainio.NewS3Store(chainio.S3Config{
		Endpoint:  fake.URL(),
		Region:    fake.Region,
		Bucket:    fake.Bucket,
		AccessKey: fake.AccessKey,
		SecretKey: fake.SecretKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestSolveRestoresOnDemand: a solve on a server that never registered the
// graph restores the chain from the store instead of answering 404, and the
// solution is bit-identical to the building server's.
func TestSolveRestoresOnDemand(t *testing.T) {
	ctx := context.Background()
	ds := snapshotStore(t)
	cfg := Config{Workers: 2, Snapshots: ds, SnapshotOnBuild: true}

	builder := New(cfg)
	g := gen.Grid2D(9, 9)
	id := GraphID(g)
	if _, _, err := builder.Register(ctx, g, "t"); err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{meanFreeRHS(g.N, 11)}
	xRef, _, err := builder.Solve(ctx, id, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := builder.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The replica: no RestoreAll, no Register — the solve itself must warm
	// the chain.
	replica := New(cfg)
	xs, _, err := replica.Solve(ctx, id, bs, 0)
	if err != nil {
		t.Fatalf("cold solve with snapshot available: %v", err)
	}
	for i := range xRef[0] {
		if math.Float64bits(xs[0][i]) != math.Float64bits(xRef[0][i]) {
			t.Fatalf("restored-on-demand solve differs at entry %d", i)
		}
	}
	h := replica.Health()
	if h.SnapshotHits != 1 {
		t.Fatalf("snapshot_hits = %d, want 1", h.SnapshotHits)
	}
	if h.Graphs != 1 {
		t.Fatalf("restored chain not cached: %d graphs", h.Graphs)
	}
	// The restore registered as a build with source "snapshot".
	st, err := replica.Stats(ctx, id)
	if err != nil || !st.Restored || st.Source != "snapshot" {
		t.Fatalf("stats after on-demand restore: %+v, %v", st, err)
	}
	// Second solve is a plain cache hit — no second restore.
	if _, _, err := replica.Solve(ctx, id, bs, 0); err != nil {
		t.Fatal(err)
	}
	if h := replica.Health(); h.SnapshotHits != 1 {
		t.Fatalf("snapshot_hits grew to %d on a cached solve", h.SnapshotHits)
	}
}

// TestSolveUnknownGraphStillNotFound: the on-demand restore path must not
// change the 404 contract when the store has no snapshot.
func TestSolveUnknownGraphStillNotFound(t *testing.T) {
	ctx := context.Background()
	srv := New(Config{Workers: 2, Snapshots: snapshotStore(t)})
	_, _, err := srv.Solve(ctx, "g0123456789abcdef0123456789abcdef", [][]float64{{1, -1}}, 0)
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("solve of unknown graph: %v, want NotFoundError", err)
	}
	if h := srv.Health(); h.SnapshotMisses != 1 {
		t.Fatalf("snapshot_misses = %d, want 1", h.SnapshotMisses)
	}
}

// TestS3WarmRestoreAcrossServers: two servers sharing a fake S3 bucket —
// the second restores what the first persisted, bit-identically, with every
// request SigV4-verified by the server.
func TestS3WarmRestoreAcrossServers(t *testing.T) {
	ctx := context.Background()
	fake := s3test.New("parlap-chains", "us-east-1", "AKID", "secret")
	defer fake.Close()
	cfg := Config{Workers: 2, Snapshots: s3Store(t, fake), SnapshotOnBuild: true}

	s1 := New(cfg)
	g := gen.Grid2D(8, 8)
	id := GraphID(g)
	if _, _, err := s1.Register(ctx, g, "t"); err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{meanFreeRHS(g.N, 4)}
	xRef, _, err := s1.Solve(ctx, id, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown snapshot pass through S3: %v", err)
	}

	s2 := New(cfg)
	restored, err := s2.RestoreAll(ctx)
	if err != nil || restored != 1 {
		t.Fatalf("RestoreAll via S3 = %d, %v", restored, err)
	}
	xs, _, err := s2.Solve(ctx, id, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xRef[0] {
		if math.Float64bits(xs[0][i]) != math.Float64bits(xRef[0][i]) {
			t.Fatalf("S3-restored solve differs at entry %d", i)
		}
	}
	if n := fake.AuthFailures(); n != 0 {
		t.Fatalf("%d S3 requests failed signature verification", n)
	}
}

// TestS3CorruptBlobDegradesToFreshBuild: a corrupt snapshot must never take
// the server down — registration falls back to building, and the error
// counters record what happened.
func TestS3CorruptBlobDegradesToFreshBuild(t *testing.T) {
	ctx := context.Background()
	fake := s3test.New("parlap-chains", "us-east-1", "AKID", "secret")
	defer fake.Close()
	cfg := Config{Workers: 2, Snapshots: s3Store(t, fake)}

	g := gen.Grid2D(7, 7)
	id := GraphID(g)
	fake.SetObject(id+".chain", []byte("definitely not a chain snapshot"))

	srv := New(cfg)
	// A solve finds the blob but cannot decode it: NotFound, one error.
	if _, _, err := srv.Solve(ctx, id, [][]float64{meanFreeRHS(g.N, 2)}, 0); err == nil {
		t.Fatal("solve served from a corrupt snapshot")
	}
	if h := srv.Health(); h.SnapshotErrors != 1 {
		t.Fatalf("snapshot_errors = %d, want 1", h.SnapshotErrors)
	}
	// Registration degrades to a fresh build and works.
	if _, cached, err := srv.Register(ctx, g, "t"); err != nil || cached {
		t.Fatalf("register over corrupt snapshot: cached=%v err=%v", cached, err)
	}
	if _, _, err := srv.Solve(ctx, id, [][]float64{meanFreeRHS(g.N, 2)}, 0); err != nil {
		t.Fatalf("solve after fresh build: %v", err)
	}
}
