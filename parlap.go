// Package parlap is a parallel solver for symmetric diagonally dominant
// (SDD) linear systems, reproducing "Near Linear-Work Parallel SDD Solvers,
// Low-Diameter Decomposition, and Low-Stretch Subgraphs" (Blelloch, Gupta,
// Koutis, Miller, Peng, Tangwongsan — SPAA 2011).
//
// The public API wraps the internal packages:
//
//   - Graph / Edge: weighted undirected graphs (weights are conductances
//     when solving, lengths when measuring stretch).
//   - NewSolver: a Laplacian solver built on the paper's preconditioner
//     chain — low-stretch subgraphs (Section 5), incremental sparsification
//     (Lemma 6.1), parallel greedy elimination (Lemma 6.5) and recursive
//     preconditioned Chebyshev with a dense bottom solve (Section 6).
//   - NewSDDSolver: general SDD input via the Gremban double-cover
//     reduction.
//   - Partition: the Section 4 parallel low-diameter decomposition.
//   - LowStretchTree / LowStretchSubgraph: the Section 5 constructions.
//
// A minimal solve:
//
//	g := parlap.Grid2D(100, 100)
//	s, err := parlap.NewSolver(g)
//	if err != nil { ... }
//	x, stats := s.Solve(b, 1e-8)
package parlap

import (
	"math/rand"

	"parlap/internal/decomp"
	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/lowstretch"
	"parlap/internal/matrix"
	"parlap/internal/solver"
	"parlap/internal/wd"
)

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// Graph is a weighted undirected multigraph in CSR form.
type Graph = graph.Graph

// NewGraph builds a graph from an edge list over n vertices.
func NewGraph(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Sparse is a square sparse matrix in CSR form.
type Sparse = matrix.Sparse

// NewSparse builds a sparse matrix from triplets, summing duplicates.
func NewSparse(n int, rows, cols []int, vals []float64) (*Sparse, error) {
	return matrix.NewSparseFromTriplets(n, rows, cols, vals)
}

// Laplacian returns the graph Laplacian of g.
func Laplacian(g *Graph) *Sparse { return matrix.LaplacianOf(g) }

// Solver solves Laplacian systems for a fixed graph.
type Solver = solver.Solver

// SDDSolver solves general SDD systems via the Gremban reduction.
type SDDSolver = solver.SDDSolver

// SolveStats reports iterations, convergence and analytic work/depth.
type SolveStats = solver.SolveStats

// ChainParams tunes preconditioner-chain construction; see DefaultOptions.
type ChainParams = solver.ChainParams

// Options selects the solver's runtime execution policy. Workers = 0 uses
// GOMAXPROCS goroutines in every parallel kernel, Workers = 1 forces the
// sequential reference path; any other value is used literally. Results are
// bitwise identical across settings (fixed reduction trees).
type Options = solver.Options

// Recorder accumulates analytic PRAM-style work/depth counters.
type Recorder = wd.Recorder

// DefaultOptions returns the chain parameters used by NewSolver.
func DefaultOptions() ChainParams { return solver.DefaultChainParams() }

// NewSolver builds a Laplacian solver for g with default options.
func NewSolver(g *Graph) (*Solver, error) {
	return solver.New(g, solver.DefaultChainParams(), nil)
}

// NewSolverWith builds a Laplacian solver with explicit options and an
// optional work/depth recorder.
func NewSolverWith(g *Graph, p ChainParams, rec *Recorder) (*Solver, error) {
	return solver.New(g, p, rec)
}

// NewSolverWithOptions builds a Laplacian solver with explicit chain
// parameters, execution policy and optional recorder.
func NewSolverWithOptions(g *Graph, p ChainParams, opt Options, rec *Recorder) (*Solver, error) {
	return solver.NewWithOptions(g, p, opt, rec)
}

// NewSDDSolver builds a solver for a general SDD matrix.
func NewSDDSolver(a *Sparse) (*SDDSolver, error) {
	return solver.NewSDD(a, solver.DefaultChainParams(), nil)
}

// NewSDDSolverWithOptions builds a solver for a general SDD matrix with an
// explicit execution policy.
func NewSDDSolverWithOptions(a *Sparse, p ChainParams, opt Options, rec *Recorder) (*SDDSolver, error) {
	return solver.NewSDDWithOptions(a, p, opt, rec)
}

// Decomposition is a low-diameter partition of a graph's vertices.
type Decomposition = decomp.Result

// Partition runs the Section 4 low-diameter decomposition with radius rho
// and practical constants; every component has strong hop-radius ≤ rho.
func Partition(g *Graph, rho int, seed int64) *Decomposition {
	rng := rand.New(rand.NewSource(seed))
	return decomp.SplitGraph(g, rho, decomp.PracticalParams(), rng, nil)
}

// LowStretchTree returns edge ids of an AKPW low-stretch spanning forest of
// g (weights as lengths).
func LowStretchTree(g *Graph, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	tree, _ := lowstretch.AKPW(g, lowstretch.PracticalParams(), rng, nil)
	return tree
}

// LowStretchSubgraph returns edge ids of a Theorem 5.9 ultra-sparse
// low-stretch subgraph of g (weights as lengths). Larger beta gives fewer
// extra edges and higher stretch.
func LowStretchSubgraph(g *Graph, beta float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	p := lowstretch.ParamsForBeta(g.N, beta, 2, false)
	sub, _ := lowstretch.LSSubgraph(g, p, rng, nil)
	return sub.EdgeIDs()
}

// AverageStretch returns the average stretch of g's edges with respect to
// the spanning forest treeEdges (weights as lengths).
func AverageStretch(g *Graph, treeEdges []int) float64 {
	_, st := lowstretch.TreeStretch(g, treeEdges)
	return st.Average
}

// Convenience generators re-exported for examples and quick starts.

// Grid2D returns the rows×cols unit-weight grid graph.
func Grid2D(rows, cols int) *Graph { return gen.Grid2D(rows, cols) }

// Grid3D returns the x×y×z unit-weight grid graph.
func Grid3D(x, y, z int) *Graph { return gen.Grid3D(x, y, z) }

// GNP returns a connected Erdős–Rényi graph.
func GNP(n int, p float64, seed int64) *Graph { return gen.GNP(n, p, seed) }
